package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"amrt/internal/experiment"
)

// docsCheckFiles are the top-level guides checked alongside docs/*.md:
// together they form the complete prose surface of the repository.
var docsCheckFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}

// runDocsCheck verifies three things across docs/*.md plus the
// top-level guides (docsCheckFiles), so the documentation cannot
// silently rot as the code moves:
//
//  1. every `pkg.Identifier` reference inside backticks resolves to an
//     identifier that actually exists in that package (only packages of
//     this repository are checked — shell commands, file names, and
//     stdlib calls in backticks are ignored);
//  2. every relative markdown link points at a file that exists;
//  3. every simulation-version literal (amrt-sim/vN) matches the
//     current amrt.SimVersion, so stale cache-key documentation is
//     caught the moment the version bumps;
//  4. every CLI flag mentioned in a code context (`-shards` inline, or
//     a command line inside a fenced block) is defined by some binary
//     under cmd/, so renaming or dropping a flag cannot leave the docs
//     advertising it. Lines invoking foreign tools (curl, the go tool,
//     pprof) are skipped, and a short allowlist covers `go test` flags
//     the docs mention bare, like -race;
//  5. no line enumerates all-but-one of the protocol comparison set,
//     checked against the live stack registry — that is the signature
//     of a full list that predates the newest protocol. Smaller
//     subsets (a two-way contrast, the receiver-driven baseline trio)
//     are legitimate prose and stay exempt.
//
// Returns a process exit code.
func runDocsCheck() int {
	idents, err := collectIdentifiers()
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 2
	}
	simVersion, err := currentSimVersion()
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 2
	}
	flags, err := collectCLIFlags()
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 2
	}
	files, err := filepath.Glob("docs/*.md")
	if err != nil || len(files) == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: no docs/*.md files found")
		return 2
	}
	files = append(files, docsCheckFiles...)
	bad := 0
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			return 2
		}
		inFence := false
		for i, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			var contexts []string
			if inFence {
				contexts = []string{line}
			} else {
				contexts = codeRefs(line)
			}
			for _, ctx := range contexts {
				if foreignToolRe.MatchString(ctx) {
					continue
				}
				for _, name := range flagMentions(ctx) {
					if !flags[name] && !goTestFlags[name] {
						fmt.Fprintf(os.Stderr, "docscheck: %s:%d: flag -%s is not defined by any cmd/ binary\n",
							path, i+1, name)
						bad++
					}
				}
			}
			for _, ref := range codeRefs(line) {
				pkg, names, ok := splitRef(ref)
				if !ok {
					continue
				}
				set := idents[pkg]
				if set == nil {
					continue // not a package of this repo
				}
				for _, name := range names {
					if !set[name] {
						fmt.Fprintf(os.Stderr, "docscheck: %s:%d: `%s` — %s has no identifier %q\n",
							path, i+1, ref, pkg, name)
						bad++
					}
				}
			}
			for _, target := range relativeLinks(line) {
				dest := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(dest); err != nil {
					fmt.Fprintf(os.Stderr, "docscheck: %s:%d: broken link %q (%s does not exist)\n",
						path, i+1, target, dest)
					bad++
				}
			}
			if ms := protocolMentions(line); len(ms) == len(protocolSet)-1 {
				fmt.Fprintf(os.Stderr, "docscheck: %s:%d: protocol list %v is missing %v (registry comparison set: %v)\n",
					path, i+1, ms, missingProtocols(ms), protocolSet)
				bad++
			}
			for _, v := range simVersionRe.FindAllString(line, -1) {
				if v != simVersion {
					fmt.Fprintf(os.Stderr, "docscheck: %s:%d: stale simulation version %q (current is %q)\n",
						path, i+1, v, simVersion)
					bad++
				}
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d stale references\n", bad)
		return 1
	}
	fmt.Printf("docscheck: all package-qualified references, relative links, version literals, and CLI flags in %d docs resolve\n", len(files))
	return 0
}

// backtickRe captures inline code spans; refRe matches qualified
// identifier chains like sim.Engine, netsim.Packet.Release, or
// sim.Engine.Run() inside them.
var (
	backtickRe = regexp.MustCompile("`([^`]+)`")
	refRe      = regexp.MustCompile(`^([a-z][a-zA-Z0-9]*)((?:\.[A-Za-z_][A-Za-z0-9_]*)+)(?:\(\))?$`)
	// linkRe captures markdown link targets; simVersionRe matches
	// simulation-version literals wherever they appear in prose.
	linkRe       = regexp.MustCompile(`\]\(([^)#]+)(?:#[^)]*)?\)`)
	simVersionRe = regexp.MustCompile(`amrt-sim/v\d+`)
)

// relativeLinks extracts the markdown link targets of one line that
// point into the repository: absolute URLs and pure-anchor links are
// skipped.
func relativeLinks(line string) []string {
	var out []string
	for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
		target := strings.TrimSpace(m[1])
		if target == "" || strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		out = append(out, target)
	}
	return out
}

// currentSimVersion extracts the amrt.SimVersion literal from the root
// package source, so the docs check cannot drift from the build.
func currentSimVersion() (string, error) {
	raw, err := os.ReadFile("amrt.go")
	if err != nil {
		return "", err
	}
	m := regexp.MustCompile(`SimVersion = "(amrt-sim/v\d+)"`).FindSubmatch(raw)
	if m == nil {
		return "", fmt.Errorf("amrt.go: SimVersion constant not found")
	}
	return string(m[1]), nil
}

// protocolSet is the live comparison set, straight from the stack
// registry — the same list the figures and the public API derive from.
var protocolSet = experiment.ProtocolNames()

var protocolRes = func() []*regexp.Regexp {
	res := make([]*regexp.Regexp, len(protocolSet))
	for i, n := range protocolSet {
		res[i] = regexp.MustCompile(`\b` + regexp.QuoteMeta(n) + `\b`)
	}
	return res
}()

// protocolMentions returns the comparison protocols named on the line,
// in registry order.
func protocolMentions(line string) []string {
	var out []string
	for i, re := range protocolRes {
		if re.MatchString(line) {
			out = append(out, protocolSet[i])
		}
	}
	return out
}

// missingProtocols returns the comparison protocols absent from the
// mentioned set.
func missingProtocols(mentioned []string) []string {
	have := map[string]bool{}
	for _, m := range mentioned {
		have[m] = true
	}
	var out []string
	for _, n := range protocolSet {
		if !have[n] {
			out = append(out, n)
		}
	}
	return out
}

func codeRefs(line string) []string {
	var out []string
	for _, m := range backtickRe.FindAllStringSubmatch(line, -1) {
		out = append(out, strings.TrimSpace(m[1]))
	}
	return out
}

// splitRef splits "pkg.A.B" into its package qualifier and the exported
// identifiers to verify. Lower-case path components (field access into
// unexported API) stop the chain; anything before the first dot must be
// a plain package name.
func splitRef(ref string) (pkg string, names []string, ok bool) {
	m := refRe.FindStringSubmatch(ref)
	if m == nil {
		return "", nil, false
	}
	for _, part := range strings.Split(strings.TrimPrefix(m[2], "."), ".") {
		if part == "" || part[0] < 'A' || part[0] > 'Z' {
			break
		}
		names = append(names, part)
	}
	if len(names) == 0 {
		return "", nil, false
	}
	return m[1], names, true
}

// collectIdentifiers parses every package in the repository and returns,
// per package name, the set of exported identifiers: top-level types,
// funcs, consts, vars, plus method and struct-field names (docs refer
// to those as pkg.Type.Method).
func collectIdentifiers() (map[string]map[string]bool, error) {
	dirs := []string{"."}
	entries, err := os.ReadDir("internal")
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("internal", e.Name()))
		}
	}
	cmds, _ := filepath.Glob("cmd/*")
	dirs = append(dirs, cmds...)

	out := map[string]map[string]bool{}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			set := out[name]
			if set == nil {
				set = map[string]bool{}
				out[name] = set
			}
			for _, file := range pkg.Files {
				addFileIdentifiers(set, file)
			}
		}
	}
	return out, nil
}

// flagTokRe matches a flag mention in a code context: a -name or --name
// token at the start or after whitespace/quote/pipe/equals, so prose
// hyphenations (receiver-driven) and diagram rules (----) never match.
// foreignToolRe recognizes command lines that belong to other programs,
// whose flags are not ours to verify. goTestFlags are `go test` flags
// the docs legitimately mention bare, outside any command line.
var (
	flagTokRe     = regexp.MustCompile("(?:^|[\\s\"'(|=`])--?([a-zA-Z][a-zA-Z0-9_-]*)")
	foreignToolRe = regexp.MustCompile(`\b(?:curl|gofmt|pprof|go (?:test|tool|vet|build|run))\b`)
	goTestFlags   = map[string]bool{
		"race": true, "bench": true, "benchmem": true, "benchtime": true,
		"short": true, "run": true, "count": true, "v": true, "cover": true,
	}
)

// flagMentions extracts the flag names mentioned in one code context,
// with any =value suffix already stripped by the token pattern.
func flagMentions(ctx string) []string {
	var out []string
	for _, m := range flagTokRe.FindAllStringSubmatch(ctx, -1) {
		out = append(out, m[1])
	}
	return out
}

// flagDefName returns the flag-name argument of a flag-definition call
// (flag.String, fs.Duration, flag.IntVar, ...), or "" if the call is
// not one. Var-style definitions carry the name second.
func flagDefName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	idx := 0
	switch sel.Sel.Name {
	case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
	case "StringVar", "BoolVar", "IntVar", "Int64Var", "UintVar", "Uint64Var",
		"Float64Var", "DurationVar", "Var", "TextVar", "Func":
		idx = 1
	default:
		return ""
	}
	if idx >= len(call.Args) {
		return ""
	}
	lit, ok := call.Args[idx].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return name
}

// collectCLIFlags parses every binary under cmd/ and returns the union
// of the flag names their flag sets define. The union (rather than a
// per-binary map) keeps the docs free to mention a flag without naming
// its binary on the same line.
func collectCLIFlags() (map[string]bool, error) {
	cmds, err := filepath.Glob("cmd/*")
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, dir := range cmds {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if name := flagDefName(call); name != "" {
							out[name] = true
						}
					}
					return true
				})
			}
		}
	}
	return out, nil
}

func addFileIdentifiers(set map[string]bool, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			set[d.Name.Name] = true
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					set[s.Name.Name] = true
					if st, ok := s.Type.(*ast.StructType); ok {
						for _, f := range st.Fields.List {
							for _, n := range f.Names {
								set[n.Name] = true
							}
						}
					}
					if it, ok := s.Type.(*ast.InterfaceType); ok {
						for _, m := range it.Methods.List {
							for _, n := range m.Names {
								set[n.Name] = true
							}
						}
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						set[n.Name] = true
					}
				}
			}
		}
	}
}
