package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// lintPackages are the packages whose exported API must be fully
// documented: the root package (the public v2 surface — Sweep,
// RunContext, Validate and friends), plus the packages whose doc
// comments carry behavioral contracts (determinism, recycling, cache
// layout, worker-pool panic propagation).
var lintPackages = []string{
	".",
	"internal/sim",
	"internal/netsim",
	"internal/faults",
	"internal/audit",
	"internal/campaign",
	"internal/server",
	"internal/stats",
	"internal/experiment",
	"internal/topo",
	"internal/workload",
}

// runLint enforces the revive-style `exported` rule over lintPackages:
// every exported top-level type, function, method, and grouped
// const/var block needs a doc comment, and type/func comments must
// start with the identifier they document. Returns a process exit code.
func runLint() int {
	bad := 0
	for _, dir := range lintPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: %v\n", err)
			return 2
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				bad += lintFile(fset, file)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d undocumented or misdocumented exported identifiers\n", bad)
		return 1
	}
	fmt.Println("lint: exported API fully documented")
	return 0
}

func lintFile(fset *token.FileSet, file *ast.File) int {
	bad := 0
	complain := func(pos token.Pos, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lint: %s: %s\n", fset.Position(pos), fmt.Sprintf(format, args...))
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedRecv(d) {
				continue
			}
			if d.Doc == nil {
				complain(d.Pos(), "exported %s %s has no doc comment", declKind(d), d.Name.Name)
			} else if !docStartsWith(d.Doc, d.Name.Name) {
				complain(d.Pos(), "doc comment of %s %s should start with %q", declKind(d), d.Name.Name, d.Name.Name)
			} else if !docLineComments(d.Doc) {
				complain(d.Doc.Pos(), "doc comment of %s %s should use // line comments", declKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					if doc == nil {
						complain(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
					} else if !docStartsWith(doc, ts.Name.Name) {
						complain(ts.Pos(), "doc comment of type %s should start with %q", ts.Name.Name, ts.Name.Name)
					} else if !docLineComments(doc) {
						complain(doc.Pos(), "doc comment of type %s should use // line comments", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A group doc covers the block; otherwise each exported
				// spec needs its own comment.
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, name := range vs.Names {
						if name.IsExported() {
							complain(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a method's receiver type is exported
// (functions without receivers count as exported scope).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if g, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = g.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func docStartsWith(doc *ast.CommentGroup, name string) bool {
	return strings.HasPrefix(strings.TrimSpace(doc.Text()), name)
}

// docLineComments reports whether every comment in the group is a //
// line comment. A /* block */ doc comment parses and renders fine, but
// it is one stray keystroke away from the `/ text` form that silently
// detaches the doc from its declaration — the repo standardizes on line
// comments so the lint can catch that class of damage.
func docLineComments(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, "//") {
			return false
		}
	}
	return true
}
