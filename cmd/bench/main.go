// Command bench is the benchmark-regression harness: it runs the
// internal/benchcases figure benchmarks (the same bodies as `go test
// -bench` at the repo root) with their fixed seeds, records ns/op,
// allocs/op, B/op, and each case's custom metrics (events/sec, figure
// headline numbers), writes BENCH_<date>.json, and compares against the
// most recent previous BENCH_*.json, warning when a case regresses by
// more than -threshold.
//
// Usage:
//
//	bench                          # run all cases, write BENCH_<today>.json, compare
//	bench -cases 'Fig09|Throughput'
//	bench -sched heap              # A/B the scheduler implementations
//	bench -threshold 0.05 -strict  # exit non-zero on regression
//	bench -cpuprofile cpu.pprof -memprofile mem.pprof
//	bench -lint                    # godoc/lint pass over the core packages
//	bench -docscheck               # verify docs/ references real Go identifiers
//
// See docs/PERFORMANCE.md for the workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"
	"time"

	"amrt/internal/benchcases"
	"amrt/internal/sim"
)

// benchFile is the BENCH_<date>.json schema (docs/PERFORMANCE.md).
type benchFile struct {
	Date      string      `json:"date"`
	Go        string      `json:"go"`
	Scheduler string      `json:"scheduler"`
	CPUs      int         `json:"cpus,omitempty"`
	Cases     []benchCase `json:"cases"`
}

type benchCase struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", ".", "directory to read/write BENCH_*.json files in")
		prev       = flag.String("prev", "", "previous BENCH_*.json to compare against (default: newest in -out)")
		threshold  = flag.Float64("threshold", 0.10, "relative regression threshold on ns/op and allocs/op")
		strict     = flag.Bool("strict", false, "exit non-zero if any case regresses beyond -threshold")
		cases      = flag.String("cases", "", "regexp selecting case names (default: all)")
		list       = flag.Bool("list", false, "list case names and exit")
		sched      = flag.String("sched", "wheel", "event scheduler: wheel|heap")
		date       = flag.String("date", "", "date stamp for the output file (default: today, YYYY-MM-DD)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
		lint       = flag.Bool("lint", false, "run the exported-identifier doc lint over the core packages and exit")
		docsCheck  = flag.Bool("docscheck", false, "verify that docs/ files reference existing Go identifiers and exit")
	)
	flag.Parse()

	if *lint || *docsCheck {
		code := 0
		if *lint {
			code |= runLint()
		}
		if *docsCheck {
			code |= runDocsCheck()
		}
		os.Exit(code)
	}

	kind, err := sim.ParseSchedulerKind(*sched)
	if err != nil {
		fatalf("%v", err)
	}
	sim.SetDefaultScheduler(kind)

	all := benchcases.All()
	if *cases != "" {
		re, err := regexp.Compile(*cases)
		if err != nil {
			fatalf("invalid -cases: %v", err)
		}
		kept := all[:0]
		for _, c := range all {
			if re.MatchString(c.Name) {
				kept = append(kept, c)
			}
		}
		all = kept
	}
	if *list {
		for _, c := range all {
			fmt.Println(c.Name)
		}
		return
	}
	if len(all) == 0 {
		fatalf("no cases match %q", *cases)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	file := benchFile{Date: *date, Go: runtime.Version(), Scheduler: kind.String(), CPUs: runtime.GOMAXPROCS(0)}
	if file.Date == "" {
		file.Date = time.Now().Format("2006-01-02")
	}
	for _, c := range all {
		fmt.Fprintf(os.Stderr, "running %-40s", c.Name)
		fn := c.Fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		bc := benchCase{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if len(r.Extra) > 0 {
			bc.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				bc.Metrics[k] = v
			}
		}
		file.Cases = append(file.Cases, bc)
		fmt.Fprintf(os.Stderr, " %12.0f ns/op %10.0f allocs/op\n", bc.NsPerOp, bc.AllocsPerOp)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		f.Close()
	}

	outPath := filepath.Join(*out, "BENCH_"+file.Date+".json")
	prevPath := *prev
	if prevPath == "" {
		prevPath = newestBenchFile(*out, outPath)
	}

	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s\n", outPath)

	if prevPath == "" {
		fmt.Println("no previous BENCH_*.json to compare against")
		return
	}
	regressed, err := compare(prevPath, file, *threshold)
	if err != nil {
		fatalf("%v", err)
	}
	if regressed && *strict {
		os.Exit(1)
	}
}

// newestBenchFile returns the lexicographically greatest BENCH_*.json in
// dir other than exclude (the file this run writes). Date-stamped names
// sort chronologically.
func newestBenchFile(dir, exclude string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if matches[i] != exclude {
			return matches[i]
		}
	}
	return ""
}

// compare prints a per-case delta table against the previous file and
// reports whether any case regressed beyond the threshold.
func compare(prevPath string, cur benchFile, threshold float64) (bool, error) {
	raw, err := os.ReadFile(prevPath)
	if err != nil {
		return false, err
	}
	var prev benchFile
	if err := json.Unmarshal(raw, &prev); err != nil {
		return false, fmt.Errorf("%s: %v", prevPath, err)
	}
	prevBy := make(map[string]benchCase, len(prev.Cases))
	for _, c := range prev.Cases {
		prevBy[c.Name] = c
	}
	fmt.Printf("comparison vs %s (threshold %.0f%%):\n", prevPath, threshold*100)
	regressed := false
	for _, c := range cur.Cases {
		p, ok := prevBy[c.Name]
		if !ok {
			fmt.Printf("  %-40s new case\n", c.Name)
			continue
		}
		dt := rel(c.NsPerOp, p.NsPerOp)
		da := rel(c.AllocsPerOp, p.AllocsPerOp)
		mark := ""
		if dt > threshold || da > threshold {
			mark = "  << REGRESSION"
			regressed = true
		}
		fmt.Printf("  %-40s time %+6.1f%%  allocs %+6.1f%%%s\n", c.Name, dt*100, da*100, mark)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "bench: regression beyond %.0f%% detected\n", threshold*100)
	}
	return regressed, nil
}

// rel returns (cur-prev)/prev, or 0 when prev is 0.
func rel(cur, prev float64) float64 {
	if prev == 0 {
		return 0
	}
	return (cur - prev) / prev
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(2)
}
